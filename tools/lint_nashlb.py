#!/usr/bin/env python3
"""Repo-specific lint rules the generic tools can't see.

Registered as the `lint_nashlb` ctest. Six rules, each encoding a
convention this repository's performance or observability story depends
on (see docs/STATIC_ANALYSIS.md):

  alloc-in-hot-path
      The allocating public APIs (`best_reply`, `waterfill_sqrt`,
      `waterfill_linear`, `optimal_fractions`) must not be called from
      `_into` fast-path function bodies, nor anywhere in the hot-loop
      files (core/dynamics.cpp, distributed/ring_protocol.cpp). The
      whole point of the `_into` layer is that a steady-state best-reply
      round performs zero heap allocations; one stray wrapper call
      silently reintroduces O(n) allocations per move and no compiler
      warning will ever say so.

  bench-registered
      Every bench/bench_*.cpp must be named in EXPERIMENTS.md so the
      artifact-regeneration map stays complete — an unregistered bench
      is a result nobody can reproduce from the docs.

  trace-arity
      In any src/ file that defines a `*_trace_columns()`,
      `*_trace_fields()` or `*_export_columns()` schema, every
      `record({...})`, `add_row({...})` and `emit_event(..., {...})`
      call in that file must pass exactly as many cells as the schema
      declares columns. The sinks enforce this at runtime, but only on
      instrumented runs — this catches the skew at lint time, before a
      benchmark burns an hour to produce a malformed CSV or span trace.

  journal-arity
      The event-journal analog of trace-arity: wherever a src/ file
      registers a journal event schema
      (`<id> = ...register_event("name", {"f1", ...})`), every
      `emit(<id>, {...})` in the same file must pass exactly as many
      values as the schema declares fields. The journal enforces this
      at runtime (obs::EnabledJournal::emit throws), but a crash dump
      with silently misaligned fields is worse than none — the whole
      point of the flight recorder is to be trustworthy post-mortem.

  histogram-bounds
      The obs::Histogram bucket layout must be declared
      programmatically: src/obs/histogram.hpp must expose
      bucket_count()/bucket_lower_bound()/bucket_upper_bound(), and no
      file outside src/obs/ may reference the layout constants
      (kMinExponent, kMaxExponent, kBucketsPerOctave) — a consumer that
      recomputes bucket edges by hand silently drifts the first time
      the grid changes.

  raw-concurrency
      No raw `std::thread`/`std::jthread`/`std::async` or
      `#pragma omp` anywhere in src/ outside src/util/parallel.{hpp,cpp}
      — all concurrency goes through util::ThreadPool. The pool is what
      makes parallel results bitwise thread-count-independent (static
      chunk assignment, ordered reductions, one RNG stream per work
      item); a stray std::thread bypasses every one of those guarantees
      and TSan can't tell you determinism broke. The synchronization
      primitives (`std::mutex`, `std::condition_variable[_any]`,
      `std::atomic*`) are additionally banned outside src/util/parallel.*
      and src/obs/ — solver code holding its own lock or atomic means
      shared mutable state the pool's static chunking was supposed to
      make impossible, and ad-hoc atomics reintroduce reduction orders
      that vary with thread interleaving. (src/obs/ is exempt: thread-
      safe instrumentation shards may need atomics by design.)

Suppression: append `// nashlb-lint: allow(<rule>)` (with a reason) on
the offending line or the line above it.

Every invocation first runs a built-in selftest: each rule is exercised
against synthetic snippets that must (and must not) trigger it — a lint
that silently stopped matching is worse than no lint.

Usage: tools/lint_nashlb.py [repo-root]   Exit: 0 clean, 1 findings.
"""

import os
import re
import sys

ALLOC_APIS = ("best_reply", "waterfill_sqrt", "waterfill_linear",
              "optimal_fractions")
ALLOC_RE = re.compile(r"\b(?:%s)\s*\(" % "|".join(ALLOC_APIS))
HOT_FILES = (
    os.path.join("src", "core", "dynamics.cpp"),
    os.path.join("src", "distributed", "ring_protocol.cpp"),
)
INTO_DEF_RE = re.compile(r"\b(\w+_into)\s*\(")
SUPPRESS_RE = re.compile(r"nashlb-lint:\s*allow\(([\w-]+)\)")

errors = []


def report(path, lineno, rule, message):
    errors.append("%s:%d: [%s] %s" % (path, lineno, rule, message))


def suppressed(lines, idx, rule):
    for probe in (idx, idx - 1):
        if probe < 0:
            continue
        m = SUPPRESS_RE.search(lines[probe])
        if m and m.group(1) == rule:
            return True
    return False


def strip_comments_and_strings(line):
    """Blanks out // comments and string literal contents so regexes
    don't match inside them (keeps column positions stable)."""
    out = []
    i, n = 0, len(line)
    in_str = None
    while i < n:
        ch = line[i]
        if in_str:
            if ch == "\\":
                out.append("  ")
                i += 2
                continue
            if ch == in_str:
                in_str = None
                out.append(ch)
            else:
                out.append(" ")
            i += 1
            continue
        if ch in "\"'":
            in_str = ch
            out.append(ch)
        elif ch == "/" and i + 1 < n and line[i + 1] == "/":
            out.append(" " * (n - i))
            break
        else:
            out.append(ch)
        i += 1
    return "".join(out)


def check_alloc_in_hot_path(root, relpath, lines):
    is_hot_file = relpath in HOT_FILES
    code = [strip_comments_and_strings(l) for l in lines]
    depth = 0
    into_fn = None       # name of the _into function whose body we're in
    into_depth = 0       # brace depth outside that function
    body_open = False    # body '{' seen yet (signature may span lines)
    for idx, line in enumerate(code):
        if into_fn is None:
            m = INTO_DEF_RE.search(line)
            # A definition introduces a body; a declaration ends in ';'
            # on the same or a following line before any '{'. Treat the
            # match as a definition lazily: we only arm the check once a
            # '{' is seen before a ';'.
            if m:
                rest = "".join(code[idx:idx + 8])
                brace, semi = rest.find("{"), rest.find(";")
                if brace != -1 and (semi == -1 or brace < semi):
                    into_fn = m.group(1)
                    into_depth = depth
                    body_open = False
        in_scope = is_hot_file or (into_fn is not None and
                                   depth > into_depth)
        if in_scope:
            for m in ALLOC_RE.finditer(line):
                name = line[m.start():m.end() - 1].strip()
                if suppressed(lines, idx, "alloc-in-hot-path"):
                    continue
                where = ("hot file" if is_hot_file
                         else "body of %s" % into_fn)
                report(relpath, idx + 1, "alloc-in-hot-path",
                       "allocating API %s() called in %s; use the _into "
                       "variant with a workspace" % (name, where))
        depth += line.count("{") - line.count("}")
        if into_fn is not None:
            if depth > into_depth:
                body_open = True
            elif body_open:
                into_fn = None


def check_bench_registered(root):
    exp_path = os.path.join(root, "EXPERIMENTS.md")
    try:
        with open(exp_path, encoding="utf-8") as f:
            experiments = f.read()
    except OSError:
        report("EXPERIMENTS.md", 1, "bench-registered", "file missing")
        return
    bench_dir = os.path.join(root, "bench")
    for name in sorted(os.listdir(bench_dir)):
        if not (name.startswith("bench_") and name.endswith(".cpp")):
            continue
        stem = name[:-len(".cpp")]
        if stem not in experiments:
            report(os.path.join("bench", name), 1, "bench-registered",
                   "%s is not mentioned in EXPERIMENTS.md (add it to the "
                   "CSV-regeneration map)" % stem)


def parse_balanced(text, start):
    """Returns (content, end) for the balanced (...) starting at
    text[start] == '('."""
    depth = 0
    for i in range(start, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return text[start + 1:i], i
    return None, None


def count_cells(arg):
    """Number of top-level cells in a `{a, b, c}` braced list."""
    arg = arg.strip()
    if not arg.startswith("{"):
        return None
    depth = 0
    cells = 1
    in_str = None
    prev = ""
    for ch in arg:
        if in_str:
            if ch == in_str and prev != "\\":
                in_str = None
        elif ch in "\"'":
            in_str = ch
        elif ch in "({[":
            depth += 1
        elif ch in ")}]":
            depth -= 1
        elif ch == "," and depth == 1:
            cells += 1
        prev = ch
    return cells


def top_level_brace_list(arg):
    """Returns the first top-level `{...}` sub-list of a call's argument
    text (string-aware), or None. For record()/add_row() the whole
    argument is the list; for emit_event() it is the last argument."""
    depth = 0
    in_str = None
    prev = ""
    start = None
    for i, ch in enumerate(arg):
        if in_str:
            if ch == in_str and prev != "\\":
                in_str = None
        elif ch in "\"'":
            in_str = ch
        elif ch == "{":
            if depth == 0 and start is None:
                start = i
            depth += 1
        elif ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        elif ch == "}":
            depth -= 1
            if depth == 0 and start is not None:
                return arg[start:i + 1]
        prev = ch
    return None


SCHEMA_DECL_RE = re.compile(
    r"(\w+_(?:trace_columns|trace_fields|export_columns))\s*\(\)\s*\{")
# Calls whose braced cell list must match the file's schema arity. For
# emit_event the list is one argument among several; for the others it
# is the whole argument.
ARITY_CALLS = ("record", "add_row", "emit_event")
ARITY_CALL_RE = re.compile(r"\b(%s)\s*\(" % "|".join(ARITY_CALLS))


def check_trace_arity(root, relpath, text, lines):
    decl = SCHEMA_DECL_RE.search(text)
    if not decl:
        return
    # Columns: string literals inside the braced return list.
    body_start = text.index("{", decl.start())
    ret = re.search(r"return\s*\{", text[body_start:])
    if not ret:
        report(relpath, 1, "trace-arity",
               "%s has no braced return list" % decl.group(1))
        return
    brace_open = body_start + ret.end() - 1
    depth = 0
    for i in range(brace_open, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                break
    columns = len(re.findall(r'"[^"]*"', text[brace_open:i + 1]))
    # Every emitting call in the same file must pass `columns` cells.
    for m in ARITY_CALL_RE.finditer(text):
        call = m.group(1)
        arg, end = parse_balanced(text, m.end() - 1)
        if arg is None:
            continue
        lineno = text.count("\n", 0, m.start()) + 1
        if suppressed(lines, lineno - 1, "trace-arity"):
            continue
        if call == "emit_event":
            # The cell list is one argument among several; a match with
            # no list at all is the function's own definition.
            cells = count_cells(top_level_brace_list(arg) or "")
            if cells is None:
                continue
        else:
            cells = count_cells(arg)
            if cells is None:
                report(relpath, lineno, "trace-arity",
                       "%s() argument is not a braced cell list; cannot "
                       "check arity against %s (suppress with a comment "
                       "if intentional)" % (call, decl.group(1)))
                continue
        if cells != columns:
            report(relpath, lineno, "trace-arity",
                   "%s() passes %d cells but %s declares %d columns"
                   % (call, cells, decl.group(1), columns))


JOURNAL_REGISTER_RE = re.compile(r"\bregister_event\s*\(")
# emit(<id>, {...}) — the id must be a bare identifier directly before
# the comma, so the journal's own `emit(EventId id, ...)` definition
# never matches.
JOURNAL_EMIT_RE = re.compile(r"\bemit\s*\(\s*(\w+)\s*,")


def journal_schemas(text):
    """Maps EventId variable name -> declared field count for every
    `<var> = ...register_event("name", {"f1", ...})` in a file. Calls
    without an assignment or without a braced field list (e.g. the
    journal's own declaration) are skipped."""
    schemas = {}
    for m in JOURNAL_REGISTER_RE.finditer(text):
        arg, _end = parse_balanced(text, text.index("(", m.start()))
        if arg is None:
            continue
        field_list = top_level_brace_list(arg)
        if field_list is None:
            continue
        stmt_start = max(text.rfind(c, 0, m.start()) for c in ";{}")
        assign = re.search(r"(\w+)\s*=[^=]*$",
                           text[stmt_start + 1:m.start()])
        if not assign:
            continue
        schemas[assign.group(1)] = len(
            re.findall(r'"[^"]*"', field_list))
    return schemas


def check_journal_arity(root, relpath, text, lines):
    schemas = journal_schemas(text)
    if not schemas:
        return
    for m in JOURNAL_EMIT_RE.finditer(text):
        var = m.group(1)
        if var not in schemas:
            continue  # registered elsewhere; the runtime check covers it
        lineno = text.count("\n", 0, m.start()) + 1
        if suppressed(lines, lineno - 1, "journal-arity"):
            continue
        arg, _end = parse_balanced(text, text.index("(", m.start()))
        if arg is None:
            continue
        value_list = top_level_brace_list(arg)
        if value_list is None:
            report(relpath, lineno, "journal-arity",
                   "emit(%s, ...) does not pass a braced value list; "
                   "cannot check arity against the registered schema "
                   "(suppress with a comment if intentional)" % var)
            continue
        inner = value_list.strip()[1:-1].strip()
        cells = 0 if not inner else count_cells(value_list)
        if cells != schemas[var]:
            report(relpath, lineno, "journal-arity",
                   "emit(%s, ...) passes %d values but the registered "
                   "schema declares %d fields"
                   % (var, cells, schemas[var]))


HISTOGRAM_LAYOUT_HPP = os.path.join("src", "obs", "histogram.hpp")
HISTOGRAM_BOUNDS_API = ("bucket_count", "bucket_lower_bound",
                        "bucket_upper_bound")
HISTOGRAM_CONST_RE = re.compile(
    r"\bkMinExponent\b|\bkMaxExponent\b|\bkBucketsPerOctave\b")


def check_histogram_bounds(root, relpath, text, lines):
    if relpath == HISTOGRAM_LAYOUT_HPP:
        for api in HISTOGRAM_BOUNDS_API:
            if not re.search(r"\b%s\s*\(" % api, text):
                report(relpath, 1, "histogram-bounds",
                       "HistogramLayout no longer declares %s(); consumers "
                       "need the programmatic bucket-bounds API" % api)
        return
    if relpath.startswith(os.path.join("src", "obs") + os.sep):
        return  # the layout's own implementation may use its constants
    code = [strip_comments_and_strings(l) for l in lines]
    for idx, line in enumerate(code):
        m = HISTOGRAM_CONST_RE.search(line)
        if not m:
            continue
        if suppressed(lines, idx, "histogram-bounds"):
            continue
        report(relpath, idx + 1, "histogram-bounds",
               "%s referenced outside src/obs/: derive bucket edges via "
               "HistogramLayout::bucket_lower_bound()/bucket_upper_bound() "
               "instead of recomputing the grid" % m.group(0))


RAW_CONCURRENCY_RE = re.compile(
    r"\bstd::(?:jthread|thread|async)\b|#\s*pragma\s+omp\b")
# Synchronization primitives: banned outside parallel.* AND src/obs/
# (instrumentation shards may legitimately be atomic; solver code may
# not hold its own locks or atomics).
RAW_SYNC_RE = re.compile(
    r"\bstd::(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|condition_variable(?:_any)?|"
    r"atomic(?:_\w+)?)\b")
PARALLEL_FILES = (
    os.path.join("src", "util", "parallel.hpp"),
    os.path.join("src", "util", "parallel.cpp"),
)
OBS_DIR = os.path.join("src", "obs") + os.sep


def check_raw_concurrency(root, relpath, lines):
    if relpath in PARALLEL_FILES:
        return  # the pool's own implementation
    sync_exempt = relpath.startswith(OBS_DIR)
    code = [strip_comments_and_strings(l) for l in lines]
    for idx, line in enumerate(code):
        m = RAW_CONCURRENCY_RE.search(line)
        if m is None and not sync_exempt:
            m = RAW_SYNC_RE.search(line)
            if m:
                if suppressed(lines, idx, "raw-concurrency"):
                    continue
                report(relpath, idx + 1, "raw-concurrency",
                       "%s outside src/util/parallel.* and src/obs/: "
                       "solver code must not own locks or atomics — "
                       "shared state goes through util::ThreadPool's "
                       "deterministic chunking" % m.group(0))
                continue
        if not m:
            continue
        if suppressed(lines, idx, "raw-concurrency"):
            continue
        report(relpath, idx + 1, "raw-concurrency",
               "%s outside src/util/parallel.*: route concurrency through "
               "util::ThreadPool so results stay deterministic across "
               "thread counts" % m.group(0))


def selftest():
    """Each rule must flag its synthetic violation and pass its
    counter-example. Returns an error string, or None when healthy."""
    cases = [
        # (rule regex hit expected?, line)
        (True, "  std::thread worker([] {});"),
        (True, "  auto f = std::async(std::launch::async, fn);"),
        (True, "  std::jthread t;"),
        (True, "#pragma omp parallel for"),
        (True, "# pragma omp critical"),
        (False, "  std::this_thread::sleep_for(1ms);"),
        (False, "  // std::thread only named in a comment"),
        (False, '  log("std::thread inside a string literal");'),
        (False, "  pool.parallel_for(0, m, 1, fn);"),
    ]
    for expect, line in cases:
        hit = RAW_CONCURRENCY_RE.search(
            strip_comments_and_strings(line)) is not None
        if hit != expect:
            return ("raw-concurrency selftest: %r should %shave matched"
                    % (line, "" if expect else "not "))
    sync_cases = [
        (True, "  std::mutex state_lock_;"),
        (True, "  std::shared_mutex registry_lock_;"),
        (True, "  std::condition_variable ready_;"),
        (True, "  std::condition_variable_any cv_;"),
        (True, "  std::atomic<int> counter{0};"),
        (True, "  std::atomic_flag busy_ = ATOMIC_FLAG_INIT;"),
        (False, "  double total = 0.0;  // no primitive here"),
        (False, "  // std::mutex named only in a comment"),
        (False, '  trace.record({"std::atomic<int>", cells});'),
        (False, "  util::ThreadPool pool(threads);"),
    ]
    for expect, line in sync_cases:
        hit = RAW_SYNC_RE.search(
            strip_comments_and_strings(line)) is not None
        if hit != expect:
            return ("raw-concurrency selftest (sync tier): %r should "
                    "%shave matched" % (line, "" if expect else "not "))
    obs_lines = ["  std::atomic<long> count_{0};"]
    probe_errors_before = len(errors)
    check_raw_concurrency("", os.path.join("src", "obs", "probe.hpp"),
                          obs_lines)
    if len(errors) != probe_errors_before:
        del errors[probe_errors_before:]
        return ("raw-concurrency selftest: src/obs/ atomic wrongly "
                "flagged (obs is sync-exempt)")
    check_raw_concurrency("", os.path.join("src", "core", "probe.hpp"),
                          obs_lines)
    if len(errors) == probe_errors_before:
        return ("raw-concurrency selftest: src/core/ atomic not flagged")
    del errors[probe_errors_before:]
    suppressed_line = ["  std::thread t;  // nashlb-lint: allow(raw-concurrency)"]
    if not suppressed(suppressed_line, 0, "raw-concurrency"):
        return "raw-concurrency selftest: suppression comment not honored"
    if not ALLOC_RE.search("  auto r = best_reply(inst, s, j);"):
        return "alloc-in-hot-path selftest: best_reply() call not matched"
    if ALLOC_RE.search("  best_reply_into(inst, s, state, j, ws);"):
        return "alloc-in-hot-path selftest: _into variant wrongly matched"
    if count_cells("{a, {b, c}, d}") != 3:
        return "trace-arity selftest: nested cell count wrong"
    journal_snippet = (
        '  obs::EventId tick = j.register_event("tick", '
        '{"round", "norm"});\n'
        "  j.emit(tick, {1.0, 2.0});\n"
        "  j.emit(tick, {1.0});\n"
        "  j.emit(foreign, {1.0});\n")
    if journal_schemas(journal_snippet) != {"tick": 2}:
        return ("journal-arity selftest: registration not parsed: %r"
                % journal_schemas(journal_snippet))
    journal_errors_before = len(errors)
    check_journal_arity("", "selftest.cpp", journal_snippet,
                        journal_snippet.split("\n"))
    journal_flagged = errors[journal_errors_before:]
    del errors[journal_errors_before:]
    if len(journal_flagged) != 1 or "passes 1 values" not in \
            journal_flagged[0]:
        return ("journal-arity selftest: expected exactly the 1-value "
                "emit flagged, got %r" % journal_flagged)
    journal_ok = (
        '  obs::EventId tick = j.register_event("tick", {"k"});\n'
        "  // nashlb-lint: allow(journal-arity)\n"
        "  j.emit(tick, {1.0, 2.0});\n"
        "  void emit(EventId id, std::initializer_list<double> v);\n")
    check_journal_arity("", "selftest.cpp", journal_ok,
                        journal_ok.split("\n"))
    if len(errors) != journal_errors_before:
        journal_flagged = errors[journal_errors_before:]
        del errors[journal_errors_before:]
        return ("journal-arity selftest: suppression or the emit "
                "declaration wrongly flagged: %r" % journal_flagged)
    if not HISTOGRAM_CONST_RE.search("int k = kBucketsPerOctave;"):
        return "histogram-bounds selftest: layout constant not matched"
    return None


def main():
    failed = selftest()
    if failed:
        print("lint_nashlb: FAIL: selftest: " + failed, file=sys.stderr)
        return 1
    root = sys.argv[1] if len(sys.argv) > 1 else os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    src_files = []
    for base, _dirs, names in os.walk(os.path.join(root, "src")):
        for name in sorted(names):
            if name.endswith(".cpp") or name.endswith(".hpp"):
                src_files.append(os.path.join(base, name))
    for path in sorted(src_files):
        relpath = os.path.relpath(path, root)
        with open(path, encoding="utf-8") as f:
            text = f.read()
        lines = text.split("\n")
        check_alloc_in_hot_path(root, relpath, lines)
        check_trace_arity(root, relpath, text, lines)
        check_journal_arity(root, relpath, text, lines)
        check_histogram_bounds(root, relpath, text, lines)
        check_raw_concurrency(root, relpath, lines)
    check_bench_registered(root)

    if errors:
        for e in errors:
            print("lint_nashlb: FAIL: " + e, file=sys.stderr)
        return 1
    print("lint_nashlb: OK (%d src files, 6 rules)" % len(src_files))
    return 0


if __name__ == "__main__":
    sys.exit(main())
