#!/usr/bin/env python3
"""Run-report CLI: render bench telemetry to markdown, or diff two runs.

A "run directory" is anywhere bench artifacts land (the repo root, a
build directory, or a bench_results/ folder). The tool discovers, by
content rather than by name:

  * run manifests — manifest_*.json sidecars written by bench::banner
    and the "manifest" objects embedded in BENCH_*.json
    (src/obs/manifest.hpp: git sha, OBS/CHECK/SANITIZE/WERROR switches,
    thread count, config hash, free-form extras);
  * registry exports — any CSV whose header is exactly
    obs::registry_export_columns() (metric/kind/count/totals plus the
    p50/p90/p99 histogram quantiles);
  * convergence series — any CSV whose header is exactly
    obs::convergence_trace_columns() (per-round stopping norm, eps-Nash
    gap, potential, overall cost, active-set churn, utilization spread);
  * bench result rows — the "rows" arrays of BENCH_*.json baselines.

`render` writes one markdown report per run; `diff` lines two runs up
side-by-side and flags manifest drift (different build identity means
the numbers are not comparable), convergence-quality drift and
registry-count drift. `selftest` synthesizes two fixture runs in a temp
directory and checks the render and the diff paths end-to-end — it runs
as the `check_report` ctest.

Usage:
  tools/nashlb_report.py render RUN_DIR [-o OUT.md]
  tools/nashlb_report.py diff DIR_A DIR_B [-o OUT.md]
  tools/nashlb_report.py selftest

Exit: 0 ok, 1 bad input or selftest failure. `diff` reports drift in
its markdown output but still exits 0 — it is a lens, not a gate
(tools/check_bench.py is the gate).
"""

import argparse
import csv
import json
import os
import sys
import tempfile

REGISTRY_COLUMNS = ["metric", "kind", "count", "total_seconds",
                    "min_seconds", "max_seconds", "p50", "p90", "p99"]
CONVERGENCE_COLUMNS = ["round", "norm", "eps_nash_gap", "potential",
                       "overall_cost", "active_set_churn", "util_spread"]
MANIFEST_SCALAR_KEYS = ["git_sha", "obs", "check", "sanitize", "werror",
                        "threads", "config_hash"]
SKIP_DIRS = {".git", "CMakeFiles", "_deps", "build-tsan"}


# --- discovery -----------------------------------------------------------

def iter_files(run_dir):
    for dirpath, dirnames, filenames in os.walk(run_dir):
        dirnames[:] = sorted(d for d in dirnames if d not in SKIP_DIRS)
        for name in sorted(filenames):
            yield os.path.join(dirpath, name)


def read_csv_if_header(path, header):
    try:
        with open(path, encoding="utf-8", newline="") as f:
            rows = list(csv.reader(f))
    except (OSError, UnicodeDecodeError, csv.Error):
        return None
    if not rows or rows[0] != header:
        return None
    return [dict(zip(header, r)) for r in rows[1:] if len(r) == len(header)]


def to_float(cell):
    try:
        return float(cell)
    except (TypeError, ValueError):
        return float("nan")


def collect_run(run_dir):
    """Scans a run directory into {manifests, registries, series, benches},
    each mapping a display name (path relative to run_dir) to parsed
    content."""
    run = {"manifests": {}, "registries": {}, "series": {}, "benches": {}}
    for path in iter_files(run_dir):
        rel = os.path.relpath(path, run_dir)
        base = os.path.basename(path)
        if base.endswith(".json") and (base.startswith("manifest_")
                                       or base.startswith("BENCH_")):
            try:
                with open(path, encoding="utf-8") as f:
                    doc = json.load(f)
            except (OSError, ValueError):
                continue
            if base.startswith("manifest_"):
                run["manifests"][rel] = doc
            else:
                run["benches"][rel] = doc
                if isinstance(doc.get("manifest"), dict):
                    run["manifests"][rel + "#manifest"] = doc["manifest"]
        elif base.endswith(".csv"):
            registry = read_csv_if_header(path, REGISTRY_COLUMNS)
            if registry is not None:
                run["registries"][rel] = registry
                continue
            series = read_csv_if_header(path, CONVERGENCE_COLUMNS)
            if series is not None:
                run["series"][rel] = series
    return run


# --- rendering -----------------------------------------------------------

def md_table(header, rows):
    out = ["| " + " | ".join(header) + " |",
           "| " + " | ".join("---" for _ in header) + " |"]
    out.extend("| " + " | ".join(str(c) for c in row) + " |" for row in rows)
    return out


def manifest_rows(manifest):
    rows = [(k, manifest.get(k, "?")) for k in MANIFEST_SCALAR_KEYS]
    for key, value in sorted((manifest.get("extras") or {}).items()):
        rows.append(("extras." + key, value))
    return rows


def series_summary(series):
    """One summary dict per convergence series: round span, first/last
    norm, last finite eps-Nash gap, total churn."""
    norms = [to_float(r["norm"]) for r in series]
    gaps = [to_float(r["eps_nash_gap"]) for r in series]
    finite_gaps = [g for g in gaps if g == g]  # NaN != NaN
    return {
        "rounds": len(series),
        "first_norm": norms[0] if norms else float("nan"),
        "last_norm": norms[-1] if norms else float("nan"),
        "final_eps_nash": finite_gaps[-1] if finite_gaps else float("nan"),
        "total_churn": sum(int(to_float(r["active_set_churn"]))
                           for r in series),
    }


def fmt(value):
    if isinstance(value, float):
        return "nan" if value != value else "%.6g" % value
    return str(value)


def render(run_dir, run):
    lines = ["# nashlb run report: %s" % run_dir, ""]
    if run["manifests"]:
        lines.append("## Run manifests")
        lines.append("")
        for name, manifest in sorted(run["manifests"].items()):
            lines.append("### %s" % name)
            lines.append("")
            lines.extend(md_table(
                ["field", "value"],
                [(k, fmt(v)) for k, v in manifest_rows(manifest)]))
            lines.append("")
    for name, doc in sorted(run["benches"].items()):
        rows = doc.get("rows") or []
        if not rows:
            continue
        lines.append("## Bench %s (%s)" % (doc.get("bench", "?"), name))
        lines.append("")
        columns = sorted({k for r in rows for k in r})
        lines.extend(md_table(
            columns, [[fmt(r.get(c, "")) for c in columns] for r in rows]))
        lines.append("")
    for name, series in sorted(run["series"].items()):
        summary = series_summary(series)
        lines.append("## Convergence series %s" % name)
        lines.append("")
        lines.extend(md_table(
            ["rounds", "first norm", "last norm", "final eps-Nash",
             "total churn"],
            [[summary["rounds"], fmt(summary["first_norm"]),
              fmt(summary["last_norm"]), fmt(summary["final_eps_nash"]),
              summary["total_churn"]]]))
        lines.append("")
    for name, registry in sorted(run["registries"].items()):
        lines.append("## Registry %s" % name)
        lines.append("")
        lines.extend(md_table(
            REGISTRY_COLUMNS,
            [[r[c] for c in REGISTRY_COLUMNS] for r in registry]))
        lines.append("")
    if len(lines) == 2:
        lines.append("(no manifests, bench JSON, registry exports or "
                     "convergence series found)")
        lines.append("")
    return "\n".join(lines)


# --- diffing -------------------------------------------------------------

def diff_manifests(name, a, b, lines):
    drift = [(k, va, vb)
             for (k, va), (_, vb) in zip(manifest_rows(a), manifest_rows(b))
             if va != vb]
    extras_a = a.get("extras") or {}
    extras_b = b.get("extras") or {}
    for key in sorted(set(extras_a) ^ set(extras_b)):
        drift.append(("extras." + key, extras_a.get(key, "(absent)"),
                      extras_b.get(key, "(absent)")))
    for key in sorted(set(extras_a) & set(extras_b)):
        if extras_a[key] != extras_b[key]:
            drift.append(("extras." + key, extras_a[key], extras_b[key]))
    if drift:
        lines.append("### %s — DRIFT (runs are not directly comparable)"
                     % name)
        lines.append("")
        lines.extend(md_table(["field", "run A", "run B"],
                              [(k, fmt(va), fmt(vb))
                               for k, va, vb in drift]))
    else:
        lines.append("### %s — identical build + configuration" % name)
    lines.append("")


def diff_section(title, names_a, names_b, lines, row_fn):
    lines.append("## %s" % title)
    lines.append("")
    only_a = sorted(set(names_a) - set(names_b))
    only_b = sorted(set(names_b) - set(names_a))
    for name in only_a:
        lines.append("* `%s` only in run A" % name)
    for name in only_b:
        lines.append("* `%s` only in run B" % name)
    if only_a or only_b:
        lines.append("")
    for name in sorted(set(names_a) & set(names_b)):
        row_fn(name)


def diff(dir_a, dir_b, run_a, run_b):
    lines = ["# nashlb run diff", "",
             "* run A: %s" % dir_a,
             "* run B: %s" % dir_b, ""]

    def manifest_row(name):
        diff_manifests(name, run_a["manifests"][name],
                       run_b["manifests"][name], lines)

    def series_row(name):
        sa = series_summary(run_a["series"][name])
        sb = series_summary(run_b["series"][name])
        lines.append("### %s" % name)
        lines.append("")
        lines.extend(md_table(
            ["summary", "run A", "run B"],
            [(k, fmt(sa[k]), fmt(sb[k]))
             for k in ("rounds", "first_norm", "last_norm",
                       "final_eps_nash", "total_churn")]))
        lines.append("")

    def registry_row(name):
        by_metric_a = {r["metric"]: r for r in run_a["registries"][name]}
        by_metric_b = {r["metric"]: r for r in run_b["registries"][name]}
        rows = []
        for metric in sorted(set(by_metric_a) | set(by_metric_b)):
            count_a = by_metric_a.get(metric, {}).get("count", "(absent)")
            count_b = by_metric_b.get(metric, {}).get("count", "(absent)")
            rows.append((metric, count_a, count_b,
                         "" if count_a == count_b else "drift"))
        lines.append("### %s" % name)
        lines.append("")
        lines.extend(md_table(["metric", "count A", "count B", ""], rows))
        lines.append("")

    diff_section("Run manifests", run_a["manifests"], run_b["manifests"],
                 lines, manifest_row)
    diff_section("Convergence series", run_a["series"], run_b["series"],
                 lines, series_row)
    diff_section("Registries", run_a["registries"], run_b["registries"],
                 lines, registry_row)
    return "\n".join(lines)


# --- selftest ------------------------------------------------------------

def write_fixture_run(root, git_sha, rounds, journal_dropped):
    os.makedirs(root, exist_ok=True)
    manifest = {"git_sha": git_sha, "obs": True, "check": False,
                "sanitize": "OFF", "werror": True, "threads": 4,
                "config_hash": "%016x" % abs(hash(git_sha)),
                "extras": {"utilization": "0.6"}}
    with open(os.path.join(root, "manifest_P5.json"), "w",
              encoding="utf-8") as f:
        json.dump(manifest, f)
    with open(os.path.join(root, "BENCH_convergence.json"), "w",
              encoding="utf-8") as f:
        json.dump({"bench": "convergence", "manifest": manifest,
                   "rows": [{"kind": "roundrobin", "m": 3, "n": 2,
                             "iterations": rounds, "converged": True,
                             "rounds_to_tol": rounds,
                             "final_eps_nash": 1e-7}]}, f)
    with open(os.path.join(root, "convergence_roundrobin.csv"), "w",
              encoding="utf-8", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(CONVERGENCE_COLUMNS)
        for k in range(1, rounds + 1):
            writer.writerow([k, 0.5 / k, 1e-7 if k == rounds else "nan",
                             2.0, 0.3, 1 if k == 1 else 0, 0.4])
    with open(os.path.join(root, "convergence_registry.csv"), "w",
              encoding="utf-8", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(REGISTRY_COLUMNS)
        writer.writerow(["journal.dropped", "counter", journal_dropped,
                         0, 0, 0, 0, 0, 0])
    # Decoys the scanner must ignore: wrong-schema CSV and non-run JSON.
    with open(os.path.join(root, "other.csv"), "w", encoding="utf-8") as f:
        f.write("a,b\n1,2\n")
    with open(os.path.join(root, "notes.json"), "w", encoding="utf-8") as f:
        f.write("{\"unrelated\": true}\n")


def expect(condition, message, failures):
    if not condition:
        failures.append(message)


def selftest():
    failures = []
    with tempfile.TemporaryDirectory(prefix="nashlb_report_") as tmp:
        dir_a = os.path.join(tmp, "run_a")
        dir_b = os.path.join(tmp, "run_b")
        write_fixture_run(dir_a, "aaaa00000000", rounds=5,
                          journal_dropped=0)
        write_fixture_run(dir_b, "bbbb11111111", rounds=7,
                          journal_dropped=3)

        run_a = collect_run(dir_a)
        expect(set(run_a["manifests"]) ==
               {"manifest_P5.json", "BENCH_convergence.json#manifest"},
               "manifest discovery found %r" % sorted(run_a["manifests"]),
               failures)
        expect(list(run_a["series"]) == ["convergence_roundrobin.csv"],
               "series discovery found %r" % sorted(run_a["series"]),
               failures)
        expect(list(run_a["registries"]) == ["convergence_registry.csv"],
               "registry discovery found %r (decoy not ignored?)"
               % sorted(run_a["registries"]), failures)

        report = render(dir_a, run_a)
        for needle in ("aaaa00000000", "## Bench convergence",
                       "## Convergence series", "final eps-Nash",
                       "journal.dropped", "extras.utilization"):
            expect(needle in report,
                   "render is missing %r" % needle, failures)
        summary = series_summary(run_a["series"]
                                 ["convergence_roundrobin.csv"])
        expect(summary["rounds"] == 5 and summary["final_eps_nash"] == 1e-7
               and summary["total_churn"] == 1,
               "series summary wrong: %r" % summary, failures)

        run_b = collect_run(dir_b)
        report_ab = diff(dir_a, dir_b, run_a, run_b)
        expect("DRIFT" in report_ab and "bbbb11111111" in report_ab,
               "diff did not flag the git-sha drift", failures)
        expect("drift" in report_ab,
               "diff did not flag the journal.dropped count drift",
               failures)
        report_aa = diff(dir_a, dir_a, run_a, run_a)
        expect("DRIFT" not in report_aa,
               "identical runs must not report manifest drift", failures)
        expect("identical build + configuration" in report_aa,
               "identical runs must report identical manifests", failures)
    for message in failures:
        print("nashlb_report: selftest FAIL: %s" % message,
              file=sys.stderr)
    if failures:
        return 1
    print("nashlb_report: selftest OK (render + diff on fixture runs)")
    return 0


# --- entry point ---------------------------------------------------------

def emit(text, out_path):
    if out_path:
        with open(out_path, "w", encoding="utf-8") as f:
            f.write(text + "\n")
        print("nashlb_report: wrote %s" % out_path)
    else:
        print(text)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)
    p_render = sub.add_parser("render", help="render one run to markdown")
    p_render.add_argument("run_dir")
    p_render.add_argument("-o", "--output")
    p_diff = sub.add_parser("diff", help="diff two runs side-by-side")
    p_diff.add_argument("dir_a")
    p_diff.add_argument("dir_b")
    p_diff.add_argument("-o", "--output")
    sub.add_parser("selftest", help="fixture-run selftest (ctest "
                   "check_report)")
    args = parser.parse_args()

    if args.command == "selftest":
        return selftest()
    if args.command == "render":
        if not os.path.isdir(args.run_dir):
            print("nashlb_report: not a directory: %s" % args.run_dir,
                  file=sys.stderr)
            return 1
        emit(render(args.run_dir, collect_run(args.run_dir)), args.output)
        return 0
    for d in (args.dir_a, args.dir_b):
        if not os.path.isdir(d):
            print("nashlb_report: not a directory: %s" % d, file=sys.stderr)
            return 1
    emit(diff(args.dir_a, args.dir_b, collect_run(args.dir_a),
              collect_run(args.dir_b)), args.output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
