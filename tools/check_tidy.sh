#!/bin/sh
# clang-tidy over every first-party translation unit, driven by the
# compile_commands.json the build exports (CMAKE_EXPORT_COMPILE_COMMANDS
# is always on). Registered as the `check_tidy` ctest; the check profile
# lives in .clang-tidy at the repo root (bugprone/performance/analyzer
# families + narrowing + a modernize subset, warnings-as-errors).
#
# Exit codes: 0 clean, 1 findings, 77 skipped (no clang-tidy on PATH —
# ctest treats 77 as SKIP via SKIP_RETURN_CODE, so machines without the
# LLVM toolchain don't fail the suite; the gcc -Werror baseline still
# runs everywhere).
#
# Usage: tools/check_tidy.sh [repo-root [build-dir]]
#   repo-root  default: the script's parent directory
#   build-dir  default: <repo-root>/build (must contain compile_commands.json)
set -u

root=${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}
build=${2:-$root/build}

tidy=""
for cand in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
            clang-tidy-15 clang-tidy-14; do
    if command -v "$cand" > /dev/null 2>&1; then
        tidy=$cand
        break
    fi
done
if [ -z "$tidy" ]; then
    echo "check_tidy: SKIP: no clang-tidy on PATH" >&2
    exit 77
fi

# The DB is exported by every configure (CMAKE_EXPORT_COMPILE_COMMANDS is
# set unconditionally in the top-level CMakeLists.txt); if the requested
# build dir has not been configured yet, fall back to any sibling tree
# that has, so the gate binds to real compile flags instead of guessing.
if [ ! -f "$build/compile_commands.json" ]; then
    for cand in "$root/build" "$root/build-check" "$root"/build*; do
        if [ -f "$cand/compile_commands.json" ]; then
            echo "check_tidy: note: using compile DB from $cand" \
                 "($build is not configured)"
            build=$cand
            break
        fi
    done
fi
if [ ! -f "$build/compile_commands.json" ]; then
    echo "check_tidy: FAIL: no compile_commands.json under $build (or any" \
         "build*/ sibling); configure with cmake -B $build -S $root first" >&2
    exit 1
fi

# First-party sources only: the build tree and external deps are not ours
# to lint. Benches and examples compile against the same headers, so the
# header-filter covers them via their includes.
files=$(find "$root/src" "$root/tests" "$root/bench" "$root/examples" \
        -name '*.cpp' 2> /dev/null | sort)
[ -n "$files" ] || { echo "check_tidy: FAIL: no sources found" >&2; exit 1; }

jobs=$(nproc 2> /dev/null || echo 4)
echo "check_tidy: running $tidy over $(echo "$files" | wc -l | tr -d ' ')" \
     "files ($jobs-way parallel)"
# xargs fans the file list out; clang-tidy exits nonzero per file with
# findings (WarningsAsErrors: '*'), and xargs folds that into its own
# nonzero exit.
if echo "$files" | xargs -P "$jobs" -n 8 "$tidy" -p "$build" --quiet; then
    echo "check_tidy: OK"
    exit 0
fi
echo "check_tidy: FAIL: findings above (suppression policy:" \
     "docs/STATIC_ANALYSIS.md)" >&2
exit 1
