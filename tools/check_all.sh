#!/bin/sh
# Run every quality gate in sequence — the local equivalent of a full CI
# pass (docs/STATIC_ANALYSIS.md documents each gate). Order is cheapest
# first so a drift failure surfaces in seconds, not after two builds:
#
#   1. check_docs      README/docs drift                      (~0 s)
#   2. lint_nashlb     repo-specific rules (python3)          (~0 s)
#   3. check_bench     BENCH_*.json perf baselines  (SKIP if absent)
#   4. check_format    clang-format check-only      (SKIP if absent)
#   5. -Werror build   full tree, warnings as errors (build-werror/)
#   6. check_tidy      clang-tidy over that tree    (SKIP if absent)
#   7. contract build  -DNASHLB_CHECK=ON + full ctest (build-check/)
#   8. check_sanitize  ASan+UBSan with contracts on   (build-asan/)
#   9. check_tsan      ThreadSanitizer over the parallel layer
#                      (build-tsan/)     (SKIP if TSan unsupported)
#
# Tool-gated steps (3, 4, 6, 9) are skipped, not failed, on machines
# without the tools or baselines — same convention as their ctest
# registrations.
#
# Usage: tools/check_all.sh [repo-root]   (default: script's parent dir)
set -eu

root=${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}
jobs=$(nproc 2> /dev/null || echo 4)
skipped=""

step() {
    printf '\n== check_all: %s ==\n' "$1"
}

# Exit-77 wrapper: runs a gate whose script may SKIP itself.
run_skippable() {
    name=$1
    shift
    if "$@"; then
        return 0
    elif [ "$?" -eq 77 ]; then
        skipped="$skipped $name"
        return 0
    else
        echo "check_all: FAIL in $name" >&2
        exit 1
    fi
}

step "check_docs (README/docs drift)"
"$root/tools/check_docs.sh" "$root"

step "lint_nashlb (repo-specific rules)"
python3 "$root/tools/lint_nashlb.py" "$root"

step "check_bench (perf baselines vs committed BENCH_*.json)"
run_skippable check_bench python3 "$root/tools/check_bench.py" "$root"

step "check_format (clang-format, check-only)"
run_skippable check_format "$root/tools/check_format.sh" "$root"

step "warnings-as-errors build (build-werror/)"
cmake -B "$root/build-werror" -S "$root" -DNASHLB_WERROR=ON
cmake --build "$root/build-werror" -j "$jobs"

step "check_tidy (clang-tidy over build-werror/)"
run_skippable check_tidy \
    "$root/tools/check_tidy.sh" "$root" "$root/build-werror"

step "contract build + full suite (-DNASHLB_CHECK=ON, build-check/)"
cmake -B "$root/build-check" -S "$root" \
  -DNASHLB_CHECK=ON -DNASHLB_WERROR=ON \
  -DNASHLB_BUILD_BENCH=OFF -DNASHLB_BUILD_EXAMPLES=OFF
cmake --build "$root/build-check" -j "$jobs"
# (subshell cd, not `ctest --test-dir`: that flag needs CMake >= 3.20
# and the project supports 3.16)
(cd "$root/build-check" && ctest --output-on-failure -j "$jobs")

step "check_sanitize (ASan+UBSan, contracts on)"
"$root/tools/check_sanitize.sh" "$root"

step "check_tsan (ThreadSanitizer, parallel layer)"
run_skippable check_tsan "$root/tools/check_tsan.sh" "$root"

printf '\ncheck_all: OK'
[ -z "$skipped" ] || printf ' (skipped:%s — tool or baseline unavailable)' "$skipped"
printf '\n'
