#!/bin/sh
# Run every quality gate — the local equivalent of a full CI pass
# (docs/STATIC_ANALYSIS.md documents each gate). Order is cheapest first
# so a drift failure surfaces in seconds, not after two builds:
#
#    1. check_docs          README/docs drift                      (~0 s)
#    2. lint_nashlb         repo-specific rules (python3)          (~0 s)
#    3. check_report        nashlb_report.py render/diff selftest  (~0 s)
#    4. check_analyzer      nashlb-analyzer semantic rules
#                           (SKIP=partial: token engine only, no libclang)
#    5. check_bench         BENCH_*.json perf baselines  (SKIP if absent)
#    6. check_format        clang-format check-only      (SKIP if absent)
#    7. werror_build        full tree, warnings as errors (build-werror/)
#    8. check_tidy          clang-tidy over that tree    (SKIP if absent)
#    9. check_gcc_analyzer  GCC -fanalyzer over src/core + src/util
#                           (SKIP if -fanalyzer unsupported; ~1 min)
#   10. contract_suite      -DNASHLB_CHECK=ON + full ctest (build-check/)
#   11. check_sanitize      ASan+UBSan with contracts on   (build-asan/)
#   12. check_tsan          ThreadSanitizer, parallel layer
#                           (build-tsan/)     (SKIP if TSan unsupported)
#
# Unlike a plain `set -e` chain, every step runs even after a failure —
# one broken gate must not hide the state of the other ten. The summary
# table at the end shows PASS/FAIL/SKIP and wall-clock per step; the
# script exits non-zero iff at least one non-SKIP step failed. A step
# exiting 77 is a SKIP (tool or baseline unavailable), matching the
# ctest SKIP_RETURN_CODE convention of the individual gates.
#
# Usage: tools/check_all.sh [repo-root]   (default: script's parent dir)
set -u

root=${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}
jobs=$(nproc 2> /dev/null || echo 4)

summary=""
failed=0

# run_step <name> <cmd...>: runs one gate, records PASS/FAIL/SKIP and
# elapsed wall-clock into the summary table. Exit 77 -> SKIP; any other
# nonzero -> FAIL (the script keeps going).
run_step() {
    step_name=$1
    shift
    printf '\n== check_all: %s ==\n' "$step_name"
    step_start=$(date +%s)
    "$@"
    step_rc=$?
    step_secs=$(( $(date +%s) - step_start ))
    if [ "$step_rc" -eq 0 ]; then
        step_verdict=PASS
    elif [ "$step_rc" -eq 77 ]; then
        step_verdict=SKIP
    else
        step_verdict=FAIL
        failed=1
        echo "check_all: FAIL in $step_name (continuing)" >&2
    fi
    summary="$summary$(printf '%-19s %-4s %6ss' \
        "$step_name" "$step_verdict" "$step_secs")
"
}

# Multi-command steps, wrapped so run_step can time and triage them.
werror_build() {
    cmake -B "$root/build-werror" -S "$root" -DNASHLB_WERROR=ON &&
    cmake --build "$root/build-werror" -j "$jobs"
}

contract_suite() {
    cmake -B "$root/build-check" -S "$root" \
      -DNASHLB_CHECK=ON -DNASHLB_WERROR=ON \
      -DNASHLB_BUILD_BENCH=OFF -DNASHLB_BUILD_EXAMPLES=OFF &&
    cmake --build "$root/build-check" -j "$jobs" &&
    # (subshell cd, not `ctest --test-dir`: that flag needs CMake >= 3.20
    # and the project supports 3.16)
    (cd "$root/build-check" && ctest --output-on-failure -j "$jobs")
}

all_start=$(date +%s)

run_step check_docs "$root/tools/check_docs.sh" "$root"
run_step lint_nashlb python3 "$root/tools/lint_nashlb.py" "$root"
run_step check_report python3 "$root/tools/nashlb_report.py" selftest
run_step check_analyzer python3 "$root/tools/nashlb_analyzer.py" "$root"
run_step check_bench python3 "$root/tools/check_bench.py" "$root"
run_step check_format "$root/tools/check_format.sh" "$root"
run_step werror_build werror_build
run_step check_tidy "$root/tools/check_tidy.sh" "$root" "$root/build-werror"
run_step check_gcc_analyzer "$root/tools/check_gcc_analyzer.sh" "$root"
run_step contract_suite contract_suite
run_step check_sanitize "$root/tools/check_sanitize.sh" "$root"
run_step check_tsan "$root/tools/check_tsan.sh" "$root"

total_secs=$(( $(date +%s) - all_start ))
printf '\n== check_all: summary ==\n'
printf '%-19s %-4s %7s\n' step verdict elapsed
printf '%s' "$summary"
printf '%-19s %-4s %6ss\n' total '' "$total_secs"

if [ "$failed" -ne 0 ]; then
    echo "check_all: FAIL (one or more non-SKIP steps failed; see table)" >&2
    exit 1
fi
echo "check_all: OK (SKIP rows, if any, mean tool or baseline unavailable)"
exit 0
