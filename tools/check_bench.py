#!/usr/bin/env python3
"""Performance-regression gate over the committed BENCH_*.json baselines.

The scale bench (bench_scale) writes its machine-readable result to
BENCH_<name>.json at the repo root, overwriting the committed baseline in
the working tree. This gate diffs the working-tree file against the
last-committed version (`git show HEAD:BENCH_<name>.json`) and fails when
a fresh run regressed past the tolerance:

  * timing fields (`*_seconds`) may grow by at most `--tolerance`
    (relative; default 0.5 — benchmarks on shared CI boxes are noisy,
    the gate catches structural regressions, not jitter);
  * `speedup` may shrink by at most the same factor; on threads-keyed
    rows (BENCH_parallel.json) the tolerance is symmetric — a parallel
    speedup that *grows* past tolerance is as suspicious as one that
    shrinks, since it usually means the serial reference degraded or
    the host changed out from under the baseline;
  * structural fields (kind, m, n, threads, iterations, converged,
    equilibrium_check) must match exactly — a changed iteration count
    means the algorithm changed, which a perf PR must not do silently;
  * quality floats (max_profile_diff, best_reply_gap, eps_nash_bound,
    final_eps_nash) may not grow by more than 10x past an absolute
    floor of 1e-9 — they are certificate values near zero, so relative
    comparison alone is meaningless;
  * `rounds_to_tol` (BENCH_convergence.json, from the convergence
    probe) is structural: a different round count at the stopping
    tolerance means the trajectory changed.

Rows are matched by their (kind, m, n, threads, classes) key (threads
absent on single-threaded benches like BENCH_scale.json; classes
present only on the user-class aggregation rows — see docs/SCALING.md);
added or removed rows fail (the sweep grid is part of the baseline's
contract).

A top-level "manifest" object (src/obs/manifest.hpp) is provenance,
not a metric: manifest drift between the baseline and the fresh run is
reported informationally and never fails the gate — rebuilding with a
new git sha is exactly how a fresh run is produced.

Every invocation first runs a built-in selftest: it injects a synthetic
regression into an in-memory copy of the baseline and asserts the
comparator flags it — a gate that cannot fail is worse than no gate.

Usage:
  tools/check_bench.py [--tolerance T] [repo-root]
      ctest mode: compare every BENCH_*.json at the root against its
      HEAD version. Exits 77 (ctest SKIP) when no baseline JSON or no
      git history exists.
  tools/check_bench.py --baseline A.json --fresh B.json [--tolerance T]
      direct mode: compare two explicit files (used by the unit tests
      and for ad-hoc A/B runs).

Exit: 0 clean, 1 regression found, 77 nothing to check.
"""

import argparse
import copy
import json
import os
import subprocess
import sys

SKIP = 77

TIMING_SUFFIX = "_seconds"
QUALITY_FIELDS = ("max_profile_diff", "best_reply_gap", "eps_nash_bound",
                  "final_eps_nash")
QUALITY_GROWTH = 10.0
QUALITY_FLOOR = 1e-9
EXACT_FIELDS = ("kind", "m", "n", "threads", "iterations", "converged",
                "equilibrium_check", "rounds_to_tol")


def row_key(row):
    return (row.get("kind"), row.get("m"), row.get("n"),
            row.get("threads"), row.get("classes"))


def key_str(key):
    kind, m, n, threads, classes = key
    s = "m=%s n=%s" % (m, n)
    if kind is not None:
        s = "kind=%s " % kind + s
    if threads is not None:
        s += " threads=%s" % threads
    if classes is not None:
        s += " classes=%s" % classes
    return s


def compare_rows(key, base, fresh, tolerance, errors):
    prefix = "row " + key_str(key)
    symmetric_speedup = base.get("threads") is not None
    for field in EXACT_FIELDS:
        if base.get(field) != fresh.get(field):
            errors.append("%s: %s changed %r -> %r (structural field must "
                          "match exactly)" % (prefix, field, base.get(field),
                                              fresh.get(field)))
    for field, bval in base.items():
        if field not in fresh or not isinstance(bval, float):
            continue
        fval = fresh[field]
        if field.endswith(TIMING_SUFFIX):
            if fval > bval * (1.0 + tolerance):
                errors.append(
                    "%s: %s regressed %.6g -> %.6g (+%.0f%%, tolerance "
                    "%.0f%%)" % (prefix, field, bval, fval,
                                 100.0 * (fval / bval - 1.0),
                                 100.0 * tolerance))
        elif field == "speedup":
            if fval < bval * (1.0 - tolerance):
                errors.append(
                    "%s: speedup regressed %.6g -> %.6g (-%.0f%%, tolerance "
                    "%.0f%%)" % (prefix, bval, fval,
                                 100.0 * (1.0 - fval / bval),
                                 100.0 * tolerance))
            elif symmetric_speedup and fval > bval * (1.0 + tolerance):
                errors.append(
                    "%s: speedup grew %.6g -> %.6g (+%.0f%%, tolerance is "
                    "symmetric on threads-keyed rows: rebaseline if the "
                    "host changed)" % (prefix, bval, fval,
                                       100.0 * (fval / bval - 1.0)))
        elif field in QUALITY_FIELDS:
            if fval > max(bval * QUALITY_GROWTH, QUALITY_FLOOR):
                errors.append(
                    "%s: quality field %s degraded %.3g -> %.3g (>%gx)"
                    % (prefix, field, bval, fval, QUALITY_GROWTH))


def compare(baseline, fresh, tolerance):
    """Returns a list of regression messages (empty = clean)."""
    errors = []
    base_rows = {row_key(r): r for r in baseline.get("rows", [])}
    fresh_rows = {row_key(r): r for r in fresh.get("rows", [])}
    def sort_key(k):
        return tuple((v is None, v) for v in k)

    for key in sorted((k for k in base_rows if k not in fresh_rows),
                      key=sort_key):
        errors.append("row %s disappeared from the fresh run"
                      % key_str(key))
    for key in sorted((k for k in fresh_rows if k not in base_rows),
                      key=sort_key):
        errors.append("row %s is new (regenerate the committed "
                      "baseline to extend the grid)" % key_str(key))
    for key in sorted((k for k in base_rows if k in fresh_rows),
                      key=sort_key):
        compare_rows(key, base_rows[key], fresh_rows[key], tolerance, errors)
    return errors


def selftest(baseline, tolerance):
    """The gate must flag an injected regression and pass the identity."""
    if compare(baseline, baseline, tolerance):
        return "selftest: baseline does not compare clean against itself"
    rows = baseline.get("rows", [])
    if not rows:
        return "selftest: baseline has no rows to perturb"
    hurt = copy.deepcopy(baseline)
    injected = False
    for field, val in hurt["rows"][-1].items():
        if field.endswith(TIMING_SUFFIX) and isinstance(val, float):
            hurt["rows"][-1][field] = val * (1.0 + 2.0 * (tolerance + 1.0))
            injected = True
            break
    if injected and not compare(baseline, hurt, tolerance):
        return "selftest: injected timing regression was not flagged"
    perturbed_any = injected
    threads_rows = [r for r in rows if r.get("threads") is not None]
    if threads_rows:
        # Threads-keyed grids: the speedup tolerance is symmetric, so an
        # inflated speedup must be flagged too ...
        grown = copy.deepcopy(baseline)
        for r in grown["rows"]:
            if r.get("threads") is not None and "speedup" in r:
                r["speedup"] = float(r["speedup"]) * (
                    1.0 + 2.0 * (tolerance + 1.0))
                break
        if not compare(baseline, grown, tolerance):
            return ("selftest: inflated speedup on a threads-keyed row "
                    "was not flagged")
        # ... and a degraded determinism cross-check must be flagged.
        if any("max_profile_diff" in r for r in threads_rows):
            worse = copy.deepcopy(baseline)
            for r in worse["rows"]:
                if r.get("threads") is not None and "max_profile_diff" in r:
                    r["max_profile_diff"] = 1e-3
                    break
            if not compare(baseline, worse, tolerance):
                return ("selftest: degraded max_profile_diff on a "
                        "threads-keyed row was not flagged")
    if threads_rows:
        perturbed_any = True
    telemetry_rows = [r for r in rows if "rounds_to_tol" in r]
    if telemetry_rows:
        perturbed_any = True
        # Convergence-telemetry rows (BENCH_convergence.json): the round
        # count at tolerance is structural ...
        moved = copy.deepcopy(baseline)
        for r in moved["rows"]:
            if "rounds_to_tol" in r:
                r["rounds_to_tol"] = int(r["rounds_to_tol"]) + 1
                break
        if not compare(baseline, moved, tolerance):
            return ("selftest: changed rounds_to_tol was not flagged as "
                    "structural")
        # ... and the final certified gap gates like a quality field.
        if any("final_eps_nash" in r for r in telemetry_rows):
            worse = copy.deepcopy(baseline)
            for r in worse["rows"]:
                if "final_eps_nash" in r:
                    r["final_eps_nash"] = 1.0
                    break
            if not compare(baseline, worse, tolerance):
                return ("selftest: degraded final_eps_nash was not "
                        "flagged")
    if isinstance(baseline.get("manifest"), dict):
        # Manifest drift is informational: a baseline whose only change
        # is provenance (new git sha) must compare clean.
        restamped = copy.deepcopy(baseline)
        restamped["manifest"] = dict(restamped["manifest"],
                                     git_sha="selftest-resha")
        if compare(baseline, restamped, tolerance):
            return ("selftest: a manifest-only change failed the gate "
                    "(manifests are provenance, not metrics)")
    class_rows = [r for r in rows if r.get("classes") is not None]
    if class_rows:
        perturbed_any = True
        # Class-keyed rows: the classes count is part of the row key, so
        # a changed partition size must surface as a grid change ...
        moved = copy.deepcopy(baseline)
        for r in moved["rows"]:
            if r.get("classes") is not None:
                r["classes"] = int(r["classes"]) + 1
                break
        if not compare(baseline, moved, tolerance):
            return ("selftest: changed classes count was not flagged as "
                    "a grid change")
        # ... and a degraded eps-Nash certificate must be flagged.
        if any("eps_nash_bound" in r for r in class_rows):
            worse = copy.deepcopy(baseline)
            for r in worse["rows"]:
                if r.get("classes") is not None and "eps_nash_bound" in r:
                    r["eps_nash_bound"] = 1.0
                    break
            if not compare(baseline, worse, tolerance):
                return ("selftest: degraded eps_nash_bound on a "
                        "class-keyed row was not flagged")
    if not perturbed_any:
        return ("selftest: baseline has no perturbable field (timing, "
                "threads-keyed, telemetry or class rows) — a gate that "
                "cannot fail proves nothing")
    return None


def git_show(root, relpath):
    try:
        out = subprocess.run(
            ["git", "-C", root, "show", "HEAD:" + relpath],
            capture_output=True, check=True)
    except (OSError, subprocess.CalledProcessError):
        return None
    return out.stdout.decode("utf-8")


def manifest_drift(baseline, fresh):
    """Informational only: which manifest fields changed between runs."""
    base = baseline.get("manifest")
    new = fresh.get("manifest")
    if not isinstance(base, dict) or not isinstance(new, dict):
        return []
    drift = []
    for key in sorted(set(base) | set(new)):
        if key == "extras":
            continue
        if base.get(key) != new.get(key):
            drift.append("%s %r -> %r" % (key, base.get(key), new.get(key)))
    for key in sorted(set(base.get("extras") or {})
                      | set(new.get("extras") or {})):
        bval = (base.get("extras") or {}).get(key)
        fval = (new.get("extras") or {}).get(key)
        if bval != fval:
            drift.append("extras.%s %r -> %r" % (key, bval, fval))
    return drift


def check_pair(name, baseline, fresh, tolerance):
    failed = selftest(baseline, tolerance)
    if failed:
        print("check_bench: FAIL: %s: %s" % (name, failed), file=sys.stderr)
        return 1
    for note in manifest_drift(baseline, fresh):
        print("check_bench: note: %s: manifest %s (provenance only, "
              "not gated)" % (name, note))
    errors = compare(baseline, fresh, tolerance)
    for e in errors:
        print("check_bench: FAIL: %s: %s" % (name, e), file=sys.stderr)
    if errors:
        return 1
    print("check_bench: OK: %s (%d rows, tolerance %.0f%%)"
          % (name, len(baseline.get("rows", [])), 100.0 * tolerance))
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("root", nargs="?", default=None)
    parser.add_argument("--tolerance", type=float, default=0.5,
                        help="relative timing/speedup tolerance (default 0.5)")
    parser.add_argument("--baseline", help="explicit baseline JSON")
    parser.add_argument("--fresh", help="explicit fresh-run JSON")
    args = parser.parse_args()

    if (args.baseline is None) != (args.fresh is None):
        parser.error("--baseline and --fresh must be given together")

    if args.baseline:
        with open(args.baseline, encoding="utf-8") as f:
            baseline = json.load(f)
        with open(args.fresh, encoding="utf-8") as f:
            fresh = json.load(f)
        return check_pair(os.path.basename(args.fresh), baseline, fresh,
                          args.tolerance)

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    names = sorted(n for n in os.listdir(root)
                   if n.startswith("BENCH_") and n.endswith(".json"))
    if not names:
        print("check_bench: SKIP: no BENCH_*.json at %s" % root)
        return SKIP
    status = 0
    checked = 0
    for name in names:
        committed = git_show(root, name)
        if committed is None:
            print("check_bench: SKIP: %s has no committed version" % name)
            continue
        baseline = json.loads(committed)
        with open(os.path.join(root, name), encoding="utf-8") as f:
            fresh = json.load(f)
        status |= check_pair(name, baseline, fresh, args.tolerance)
        checked += 1
    if checked == 0:
        return SKIP
    return status


if __name__ == "__main__":
    sys.exit(main())
